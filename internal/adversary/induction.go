package adversary

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// segment is one recorded solo run α'_k-candidate: the events executed
// from C_{k-1} while only c_w and the servers act.
type segment struct {
	events []sim.Event
	// visIdx is the index (inclusive) after which both new values are
	// visible, or -1.
	visIdx int
	// qualifying lists indices of events containing a message ms_k: a
	// server→server send, or a server→c_w send that c_w later relays.
	qualifying []int
	quiesced   bool
}

// recordSolo runs Tw solo (c_w + servers) on a clone of cur, probing
// visibility after every event, and classifies the qualifying events.
func (a *Attack) recordSolo(cur *protocol.Deployment, cw sim.ProcessID, want map[string]model.Value, reader sim.ProcessID) *segment {
	k := cur.Kernel.Snapshot()
	d := cur.At(k)
	restr := sim.Restrict(d.Participants(cw)...)
	sched := &sim.RoundRobin{Only: restr}
	from := k.Trace().Len()
	seg := &segment{visIdx: -1}

	for i := 0; i < a.SegmentCap; i++ {
		act, more := sched.Next(k)
		if !more {
			seg.quiesced = true
			break
		}
		sim.Apply(k, act)
		if seg.visIdx < 0 {
			ev := k.Trace().Events[k.Trace().Len()-1]
			if ev.Kind == sim.EvStep || ev.Kind == sim.EvDeliver {
				vis := d.VisibleAll(reader, want, true)
				if vis.Visible {
					seg.visIdx = k.Trace().Len() - from - 1
					break
				}
			}
		}
	}
	seg.events = append([]sim.Event(nil), k.Trace().Since(from)...)
	seg.classify(cw, serverSet(d))
	return seg
}

func serverSet(d *protocol.Deployment) map[sim.ProcessID]bool {
	set := make(map[sim.ProcessID]bool)
	for _, s := range d.Place.Servers() {
		set[s] = true
	}
	return set
}

// classify finds the qualifying events (the candidates for ms_k): direct
// server→server sends, and server→c_w sends that c_w relays — c_w sends a
// message to a server in a step that consumed (or followed consumption of)
// server messages sent in this segment.
func (s *segment) classify(cw sim.ProcessID, servers map[sim.ProcessID]bool) {
	// Track server→cw send events not yet justified as relays.
	type sendRec struct {
		idx      int
		consumed bool
	}
	var srvSends []sendRec
	consumedRefs := make(map[sim.MsgRef]int) // ref -> send event index

	for i, ev := range s.events {
		if ev.Kind != sim.EvStep {
			continue
		}
		if servers[ev.Proc] {
			for _, ref := range ev.Sent {
				if servers[ref.Link.To] {
					s.qualifying = append(s.qualifying, i)
				} else if ref.Link.To == cw {
					srvSends = append(srvSends, sendRec{idx: i})
					consumedRefs[ref] = i
				}
			}
			continue
		}
		if ev.Proc != cw {
			continue
		}
		// Mark consumed server messages from this segment.
		for _, ref := range ev.Consumed {
			if sentIdx, sentHere := consumedRefs[ref]; sentHere && servers[ref.Link.From] {
				for j := range srvSends {
					if srvSends[j].idx == sentIdx {
						srvSends[j].consumed = true
					}
				}
			}
		}
		// A relay: cw sends to a server having consumed (now or earlier
		// in this segment) a server message sent in this segment.
		sendsToServer := false
		for _, ref := range ev.Sent {
			if servers[ref.Link.To] {
				sendsToServer = true
			}
		}
		if sendsToServer {
			for j := range srvSends {
				if srvSends[j].consumed {
					s.qualifying = append(s.qualifying, srvSends[j].idx)
					srvSends[j].consumed = false // assign each send once
				}
			}
		}
	}
	// Qualifying indices may be discovered out of order (relays confirm
	// earlier sends); sort ascending.
	for i := 1; i < len(s.qualifying); i++ {
		for j := i; j > 0 && s.qualifying[j] < s.qualifying[j-1]; j-- {
			s.qualifying[j], s.qualifying[j-1] = s.qualifying[j-1], s.qualifying[j]
		}
	}
}

// firstQualifying returns the earliest qualifying index that happens
// strictly before visibility (or any, if never visible), or -1.
func (s *segment) firstQualifying() int {
	for _, q := range s.qualifying {
		if s.visIdx < 0 || q < s.visIdx {
			return q
		}
	}
	return -1
}

// describe renders the event at idx for reports.
func describeEvent(ev sim.Event) string {
	if len(ev.Sent) > 0 {
		return fmt.Sprintf("step %s sending %v", ev.Proc, ev.Sent)
	}
	return ev.String()
}

// induction runs the Lemma 3 loop: construct α_1 ⊂ α_2 ⊂ ... by cutting
// the solo execution of Tw at the messages ms_k, checking claim 2 (values
// not visible) at every C_k, and constructing the contradiction execution
// (γ for claim 1, δ for claim 2) the moment a claim fails.
func (a *Attack) induction(d *protocol.Deployment, cw sim.ProcessID) (*Witness, []StepReport, error) {
	objs := d.Place.Objects()
	want := newValues(objs)
	old := oldValues(d)

	// Invoke Tw = (w(X0)x0, w(X1)x1, ...) at c_w from C_0; it stays
	// active for the entire induction (the paper's troublesome α).
	var writes []model.Write
	for _, obj := range objs {
		writes = append(writes, model.Write{Object: obj, Value: want[obj]})
	}
	d.Invoke(cw, model.NewWriteOnly(model.TxnID{}, writes...))

	reports := []StepReport{}
	maxK := a.MaxK
	if maxK <= 0 {
		maxK = 8
	}
	servers := d.Place.Servers()

	for k := 1; k <= maxK; k++ {
		reader := d.Readers[(k-1)%len(d.Readers)]
		probeReader := d.Readers[(k)%len(d.Readers)]
		seg := a.recordSolo(d, cw, want, probeReader)

		// The paper's alternation (Theorem 1): p_{(k-1)%2} answers new and
		// p_{k%2} is filtered. In the general case (Theorem 2, m servers,
		// partial replication) a single server p answers new and every
		// other server is filtered out of β_new — the same construction.
		newSrv := servers[(k-1)%len(servers)]
		var oldFirst []sim.ProcessID
		for _, s := range servers {
			if s != newSrv {
				oldFirst = append(oldFirst, s)
			}
		}

		q := seg.firstQualifying()
		if q < 0 {
			if seg.visIdx < 0 {
				// Tw can make no further progress and the values never
				// become visible: minimal progress is violated outright.
				return nil, reports, nil
			}
			// Claim 1 fails: visibility was reached with no server
			// needing to send ms_k. Build γ = σ_old · β_new · σ_new and
			// exhibit the mixed read.
			beta := seg.events[:seg.visIdx+1]
			res, err := a.buildContradiction(d, beta, oldFirst, newSrv, reader)
			if err != nil {
				return nil, reports, fmt.Errorf("adversary: γ construction at k=%d: %w", k, err)
			}
			if w := mixedWitness("gamma", k, reader, res, old, want, objs); w != nil {
				return w, reports, nil
			}
			return nil, reports, fmt.Errorf("adversary: γ at k=%d completed without a mixed read: %v", k, res)
		}

		// Cut α'_k at ms_k and advance the main configuration to C_k.
		alphaK := seg.events[:q+1]
		prev := d.At(d.Kernel.Snapshot()) // C_{k-1}, kept for δ
		replay := &sim.Scripted{Steps: sim.ScriptOf(alphaK)}
		sim.Run(d.Kernel, replay, nil, len(alphaK)+8)
		if replay.Err != nil {
			return nil, reports, fmt.Errorf("adversary: α'_%d replay diverged: %w", k, replay.Err)
		}

		// Claim 2: at C_k the new values must not be visible.
		visible := false
		for _, obj := range objs {
			if visibleOne(d, probeReader, obj, want[obj]) {
				visible = true
				break
			}
		}
		reports = append(reports, StepReport{
			K:                k,
			Msk:              describeEvent(seg.events[q]),
			Events:           len(alphaK),
			NewValuesVisible: visible,
		})
		if visible {
			// Claim 2 fails: build δ with ρ = α'_k and exhibit the mix.
			res, err := a.buildContradiction(prev, alphaK, oldFirst, newSrv, reader)
			if err != nil {
				return nil, reports, fmt.Errorf("adversary: δ construction at k=%d: %w", k, err)
			}
			if w := mixedWitness("delta", k, reader, res, old, want, objs); w != nil {
				return w, reports, nil
			}
			return nil, reports, fmt.Errorf("adversary: δ at k=%d completed without a mixed read: %v", k, res)
		}
	}
	return nil, reports, nil
}

// visibleOne reports whether every frozen probe returns val for obj.
func visibleOne(d *protocol.Deployment, reader sim.ProcessID, obj string, val model.Value) bool {
	for _, order := range d.ProbeOrders([]string{obj}) {
		res := d.Probe(reader, []string{obj}, order, true)
		if res == nil || !res.OK() || res.Value(obj) != val {
			return false
		}
	}
	return true
}

// mixedWitness checks a contradiction execution's result for the
// Lemma-1-forbidden mix of initial and new values.
func mixedWitness(kind string, k int, reader sim.ProcessID, res *model.Result,
	old, want map[string]model.Value, objs []string) *Witness {
	if res == nil || !res.OK() {
		return nil
	}
	sawOld, sawNew := false, false
	for _, obj := range objs {
		switch res.Value(obj) {
		case old[obj]:
			sawOld = true
		case want[obj]:
			sawNew = true
		}
	}
	if !sawOld || !sawNew {
		return nil
	}
	returned := make(map[string]model.Value, len(objs))
	for _, obj := range objs {
		returned[obj] = res.Value(obj)
	}
	return &Witness{
		Kind: kind, K: k, Reader: reader,
		Returned: returned, OldValues: old, NewValues: want,
	}
}

package adversary

import (
	"testing"

	"repro/internal/protocols/eigerps"
)

// TestEigerpsStarvationWitness exercises the third outcome of the theorem:
// a protocol that keeps all four properties AND causal consistency can
// only do so by giving up minimal progress (Definition 3). eigerps models
// the paper's †-systems (Eiger-PS, SwiftCloud): its writes complete but
// their values never become visible in-model. The adversary must observe
// the infinite execution α of Theorem 1 — every induction segment contains
// another server message ms_k and the values are never visible — and
// return the "minimal-progress" verdict, never a consistency violation.
func TestEigerpsStarvationWitness(t *testing.T) {
	a := NewAttack(eigerps.New())
	v, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", v)
	if v.Sacrifices != "minimal-progress" {
		t.Fatalf("verdict = %q, want minimal-progress", v.Sacrifices)
	}
	if v.Witness != nil {
		t.Fatalf("unexpected consistency witness: %v", v.Witness)
	}
	if len(v.Steps) == 0 {
		t.Fatal("no induction steps recorded — the infinite execution was not observed")
	}
	for _, s := range v.Steps {
		if s.NewValuesVisible {
			t.Fatalf("claim 2 violated at step %d for a protocol that never publishes", s.K)
		}
		if s.Msk == "" {
			t.Fatalf("step %d has no ms_k", s.K)
		}
	}
}

// TestEigerpsDeeperInduction runs the induction deeper to demonstrate that
// the prefixes α_k keep extending — the execution α is unbounded.
func TestEigerpsDeeperInduction(t *testing.T) {
	a := NewAttack(eigerps.New())
	a.MaxK = 16
	v, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.Sacrifices != "minimal-progress" {
		t.Fatalf("verdict = %q", v.Sacrifices)
	}
	if len(v.Steps) < 8 {
		t.Fatalf("induction stalled early: %d steps", len(v.Steps))
	}
}

package repro

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/copssnow"
	"repro/internal/protocols/naivefast"
	"repro/internal/protocols/twopcfast"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// --- E1: Table 1 (system characterization) ---

// BenchmarkTable1Characterization regenerates a measured Table 1 row
// (profile + theorem verdict) per protocol.
func BenchmarkTable1Characterization(b *testing.B) {
	for _, name := range []string{"copssnow", "wren", "spanner", "fatcops", "naivefast"} {
		p := core.ByName(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Characterize(p, []int64{1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E2: Figure 1 (Q_in → Q_0 → C_0) ---

func BenchmarkFigure1Setup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := adversary.SetupC0(copssnow.New(),
			protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: Figure 2 (Constructions 1 and 2) ---

func BenchmarkFigure2Constructions(b *testing.B) {
	d, err := adversary.SetupC0(naivefast.New(),
		protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	orders := d.ProbeOrders([]string{"X0", "X1"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := d.Probe("r0", []string{"X0", "X1"}, orders[i%len(orders)], true)
		if res == nil || !res.OK() {
			b.Fatal("probe failed")
		}
	}
}

// --- E4: Figure 3 + Theorem 1 (the induction and the contradiction) ---

func BenchmarkTheorem1Induction(b *testing.B) {
	for _, victim := range []protocol.Protocol{naivefast.New(), twopcfast.New()} {
		b.Run(victim.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := adversary.NewAttack(victim).Run()
				if err != nil {
					b.Fatal(err)
				}
				if v.Witness == nil {
					b.Fatal("no witness")
				}
			}
		})
	}
}

// --- E5: Theorem 2 (partial replication) ---

func BenchmarkTheorem2Partial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := adversary.NewAttack(naivefast.New())
		a.Cfg = protocol.Config{
			Servers: 3, ObjectsPerServer: 1, Replication: 2,
			Clients: 2, Readers: 8, Seed: 101,
		}
		v, err := a.Run()
		if err != nil {
			b.Fatal(err)
		}
		if v.Witness == nil {
			b.Fatal("no witness")
		}
	}
}

// --- E6: §3.4 limit corners ---

func BenchmarkLimitsCorners(b *testing.B) {
	corners := []string{"copssnow", "wren", "fatcops", "spanner"}
	for i := 0; i < b.N; i++ {
		name := corners[i%len(corners)]
		prof, err := spec.BuildProfile(core.ByName(name),
			protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 7}, []int64{1})
		if err != nil {
			b.Fatal(err)
		}
		if prof.FastROT() && prof.MultiWrite {
			b.Fatalf("%s achieves all four — impossible", name)
		}
	}
}

// --- E7: latency and staleness ---

func BenchmarkROTLatency(b *testing.B) {
	for _, name := range []string{"copssnow", "wren", "contrarian", "spanner", "fatcops", "eiger"} {
		b.Run(name, func(b *testing.B) {
			var p50 int64
			for i := 0; i < b.N; i++ {
				rep, err := core.MeasureLatency(core.ByName(name), workload.ReadHeavy(), 30, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				p50 = rep.ROT.P50
			}
			b.ReportMetric(float64(p50), "virtual-µs-p50")
		})
	}
}

func BenchmarkVisibilityStaleness(b *testing.B) {
	for _, name := range []string{"copssnow", "wren", "cure"} {
		b.Run(name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				rep, err := core.MeasureLatency(core.ByName(name), workload.Balanced(), 30, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				mean = rep.Staleness.Mean
			}
			b.ReportMetric(mean, "virtual-µs-mean")
		})
	}
}

// --- E8: closed-loop concurrent throughput (the load harness) ---

func BenchmarkClosedLoopThroughput(b *testing.B) {
	for _, name := range []string{"cops", "cure", "spanner"} {
		b.Run(name, func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				rep, err := core.MeasureThroughput(core.ByName(name), workload.ReadHeavy(), 16, 500, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Incomplete != 0 {
					b.Fatalf("%d transactions incomplete", rep.Incomplete)
				}
				thr = rep.Throughput
			}
			b.ReportMetric(thr, "virtual-txn/s")
		})
	}
}

// BenchmarkOpenLoopCurve measures one open-loop latency–throughput curve
// (E9): saturation estimate plus a light/heavy rate pair. The reported
// metric is kernel events per committed transaction at 10% load — the
// quantity the time-leap scheduler keeps small (a spin regression shows
// up as a ~100× jump).
func BenchmarkOpenLoopCurve(b *testing.B) {
	for _, name := range []string{"cops", "spanner"} {
		b.Run(name, func(b *testing.B) {
			var evPerTxn float64
			for i := 0; i < b.N; i++ {
				curve, err := core.MeasureLoadCurve(core.ByName(name), workload.ReadHeavy(), int64(i)+1,
					core.CurveOptions{Clients: 8, Txns: 300, Fractions: []float64{0.1, 0.9}})
				if err != nil {
					b.Fatal(err)
				}
				light := curve.Points[0]
				if light.Incomplete != 0 {
					b.Fatalf("%d transactions incomplete", light.Incomplete)
				}
				evPerTxn = float64(light.Events) / float64(light.Committed)
			}
			b.ReportMetric(evPerTxn, "events/txn@10%")
		})
	}
}

// BenchmarkDriverEventRate measures raw kernel event throughput under
// concurrent load (events are the unit of simulated work, so wall-clock
// per event is the substrate cost to optimize).
func BenchmarkDriverEventRate(b *testing.B) {
	rep, err := core.MeasureThroughput(core.ByName("cops"), workload.ReadHeavy(), 16, 500, 1)
	if err != nil {
		b.Fatal(err)
	}
	evPerRun := rep.Events
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MeasureThroughput(core.ByName("cops"), workload.ReadHeavy(), 16, 500, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(evPerRun), "events/run")
}

// BenchmarkSteppingEngines compares the kernel stepping engines on the
// same 8-server 64-client cell (E12/E13): the legacy serial scheduler
// (workers=0), the window-synchronized barrier engine, conservative
// lookahead executed serially (workers=1, the oracle schedule) and on a
// 4-goroutine pool (workers=4), and lookahead with the deterministic
// shard rebalance. Reported metric for sharded runs: events ÷
// critical-path events — the measured shard-parallelism, i.e. the
// multi-core speedup ceiling of the cell.
func BenchmarkSteppingEngines(b *testing.B) {
	cases := []struct {
		name string
		opt  core.ThroughputOptions
	}{
		{"serial", core.ThroughputOptions{Servers: 8}},
		{"barrier/workers=1", core.ThroughputOptions{Servers: 8, Workers: 1, Barrier: true}},
		{"lookahead/workers=1", core.ThroughputOptions{Servers: 8, Workers: 1}},
		{"lookahead/workers=4", core.ThroughputOptions{Servers: 8, Workers: 4}},
		{"lookahead+rebalance/workers=1", core.ThroughputOptions{Servers: 8, Workers: 1, Rebalance: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var par float64
			for i := 0; i < b.N; i++ {
				rep, err := core.MeasureThroughputWith(core.ByName("cops"), workload.ReadHeavy(),
					64, 2000, 42, c.opt)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Incomplete != 0 {
					b.Fatalf("%d transactions incomplete", rep.Incomplete)
				}
				if rep.Sharding != nil {
					par = float64(rep.Sharding.Events) / float64(rep.Sharding.CriticalEvents)
				}
			}
			if par > 0 {
				b.ReportMetric(par, "shard-parallelism")
			}
		})
	}
}

// --- substrate benchmarks (regression tracking) ---

func BenchmarkCausalChecker(b *testing.B) {
	h := history.New(map[string]model.Value{"X0": "i0", "X1": "i1"})
	h.Add(&history.TxnRecord{ID: model.TxnID{Client: "a", Seq: 1}, Client: "a",
		Writes: []model.Write{{Object: "X0", Value: "a0"}, {Object: "X1", Value: "a1"}}})
	h.Add(&history.TxnRecord{ID: model.TxnID{Client: "b", Seq: 1}, Client: "b",
		Reads: map[string]model.Value{"X0": "a0", "X1": "a1"}})
	h.Add(&history.TxnRecord{ID: model.TxnID{Client: "b", Seq: 2}, Client: "b",
		Writes: []model.Write{{Object: "X0", Value: "b0"}}})
	h.Add(&history.TxnRecord{ID: model.TxnID{Client: "c", Seq: 1}, Client: "c",
		Reads: map[string]model.Value{"X0": "b0", "X1": "a1"}})
	h.Add(&history.TxnRecord{ID: model.TxnID{Client: "c", Seq: 2}, Client: "c",
		Reads: map[string]model.Value{"X0": "b0"}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := history.CheckCausal(h); !v.OK {
			b.Fatal(v.Reason)
		}
	}
}

// BenchmarkCheck charts certification cost across history sizes for both
// directions — accepting (a witness exists and is found) and refuting
// (NO serialization exists, the old checkers' exponential worst case) —
// so checker scaling regressions surface in the benchmark grid. n = 96
// and 192 are beyond the old enumeration's 62-transaction ceiling.
func BenchmarkCheck(b *testing.B) {
	for _, n := range []int{24, 48, 96, 192} {
		accept := history.GenSerializable(41, n, 8)
		refute := history.GenViolating(43, n)
		b.Run(fmt.Sprintf("accept/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if v := history.Check(accept, "causal"); !v.OK {
					b.Fatal(v.Reason)
				}
			}
		})
		b.Run(fmt.Sprintf("refute/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if v := history.Check(refute, "causal"); v.OK {
					b.Fatal("violating history certified clean")
				}
			}
		})
		// The Lemma-1 refutation above dies in clause construction; the
		// divergent-orders history refutes only through the solver's
		// branching search (both writer orders of every group explored
		// and killed), pinning the search/memoization cost.
		branch := history.GenCausalOnly(47, n)
		b.Run(fmt.Sprintf("refute-branching/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if v := history.Check(branch, "serializable"); v.OK {
					b.Fatal("divergent-orders history serialized")
				}
			}
		})
	}
}

func BenchmarkSimKernelThroughput(b *testing.B) {
	d := protocol.Deploy(naivefast.New(), protocol.Config{Servers: 4, ObjectsPerServer: 2, Clients: 4, Seed: 3})
	if err := d.InitAll(400_000); err != nil {
		b.Fatal(err)
	}
	objs := d.Place.Objects()
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		cl := d.Clients[i%len(d.Clients)]
		txn := model.NewWriteOnly(model.TxnID{},
			model.Write{Object: objs[i%len(objs)], Value: model.Value(fmt.Sprintf("bench-%d", i))})
		before := d.Kernel.Trace().Len()
		if res := d.RunTxn(cl, txn, 400_000); !res.OK() {
			b.Fatal("write failed")
		}
		events += d.Kernel.Trace().Len() - before
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/txn")
}

func BenchmarkSnapshot(b *testing.B) {
	d := protocol.Deploy(copssnow.New(), protocol.Config{Servers: 2, ObjectsPerServer: 2, Clients: 4, Seed: 5})
	if err := d.InitAll(400_000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k := d.Kernel.Snapshot(); k == nil {
			b.Fatal("nil snapshot")
		}
	}
}

func BenchmarkVisibilityProbe(b *testing.B) {
	d := protocol.Deploy(copssnow.New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 5})
	if err := d.InitAll(400_000); err != nil {
		b.Fatal(err)
	}
	want := map[string]model.Value{
		"X0": protocol.InitialValue("X0"),
		"X1": protocol.InitialValue("X1"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vis := d.VisibleAll("r0", want, true); !vis.Visible {
			b.Fatal("initials not visible")
		}
	}
}

func BenchmarkRandomScheduleWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := protocol.Deploy(copssnow.New(), protocol.Config{Servers: 2, ObjectsPerServer: 2, Clients: 2, Seed: int64(i)})
		if err := d.InitAll(400_000); err != nil {
			b.Fatal(err)
		}
		gen := workload.NewGenerator(workload.ReadHeavy(), d.Place.Objects(), int64(i))
		sched := sim.NewRandom(int64(i) * 3)
		for t := 0; t < 10; t++ {
			txn := gen.Next("c0")
			if !txn.IsReadOnly() {
				txn = gen.NextSingleWrite("c0")
			}
			if res := d.RunTxnWith("c0", txn, sched, 400_000); !res.OK() {
				b.Fatal("txn failed")
			}
		}
	}
}

// Quickstart: deploy a modeled storage system (COPS-SNOW — the paper's
// only fast-read-only-transaction system), run a few transactions through
// the public API, and verify the fast-read properties hold.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/model"
)

func main() {
	// Deploy 2 servers, 1 object each (the paper's minimal system) and
	// initialize the objects (configuration Q_0).
	d, err := repro.Deploy("copssnow", repro.Config{
		Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A fast read-only transaction: one round, one value per object,
	// non-blocking.
	res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 100_000)
	fmt.Printf("ROT #1: %v (rounds=%d)\n", res.Values, res.Rounds)

	// Single-object writes (COPS-SNOW gives up multi-object write
	// transactions — that is Theorem 1's price for fast reads).
	for i, obj := range []string{"X0", "X1"} {
		w := model.NewWriteOnly(model.TxnID{}, model.Write{
			Object: obj, Value: model.Value(fmt.Sprintf("hello-%d", i)),
		})
		if wres := d.RunTxn("c0", w, 100_000); !wres.OK() {
			log.Fatalf("write failed: %v", wres.Err)
		}
	}
	d.Settle(100_000)

	res = d.RunTxn("c1", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 100_000)
	fmt.Printf("ROT #2: %v (rounds=%d)\n", res.Values, res.Rounds)

	// And the theorem verdict for this protocol: it sacrifices W.
	v, err := repro.RunTheorem("copssnow")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theorem: %s sacrifices %s — %s\n", v.Protocol, v.Sacrifices, v.Detail)

	// Multi-object writes are rejected:
	mw := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "a"}, model.Write{Object: "X1", Value: "b"}), 100_000)
	fmt.Printf("multi-object write: err=%q\n", mw.Err)
}

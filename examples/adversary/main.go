// Adversary example — the headline result. Two protocols claim the
// impossible combination (fast read-only transactions + multi-object write
// transactions + causal consistency); the adversary of Theorem 1
// mechanically constructs the executions of the proof and exhibits, for
// each, a read that mixes initial and new values — forbidden by Lemma 1.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	for _, victim := range []string{"naivefast", "twopcfast"} {
		v, err := repro.RunTheorem(victim)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(v)
		fmt.Println()
	}

	// The same impossibility holds in the general model of Theorem 2:
	// more servers, partially replicated objects.
	v, err := repro.RunTheoremPartial("naivefast", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Theorem 2 (3 servers, 2 replicas/object):")
	fmt.Println(v)

	// And for honest systems, the adversary names the property they give
	// up instead of consistency:
	fmt.Println()
	for _, honest := range []string{"copssnow", "wren", "fatcops", "spanner"} {
		hv, err := repro.RunTheorem(honest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s sacrifices %-2s (%s)\n", hv.Protocol, hv.Sacrifices, hv.Detail)
	}
}

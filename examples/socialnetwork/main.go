// Socialnetwork: the workload the paper's introduction motivates —
// read-dominated social-graph traffic where a post and its timeline index
// must update atomically (a multi-object write transaction) while readers
// page through timelines with read-only transactions.
//
// Wren (the N+V+W corner) supports this workload with causal consistency:
// multi-object writes, non-blocking one-value reads — paying one extra
// read round for the stable cutoff. The example runs the workload, checks
// the recorded history against the formal causal-consistency checker
// (Definition 1), and reports latencies.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/stats"
)

func main() {
	// Objects: two user timelines and two post slots, spread over two
	// servers.
	d, err := repro.Deploy("wren", repro.Config{
		Servers: 2, ObjectsPerServer: 2, Clients: 3, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	objs := d.Place.Objects() // X0..X3
	postSlot, timeline := objs[0], objs[3]

	h := history.New(d.Initials())
	readLat := stats.NewCollector()
	writeLat := stats.NewCollector()

	record := func(res *model.Result) {
		if res == nil || !res.OK() {
			log.Fatalf("transaction failed: %v", res)
		}
		h.AddResult(res)
	}

	// Alice posts: the post body and her timeline index update atomically.
	for i := 0; i < 5; i++ {
		post := model.NewWriteOnly(model.TxnID{},
			model.Write{Object: postSlot, Value: model.Value(fmt.Sprintf("post-%d", i))},
			model.Write{Object: timeline, Value: model.Value(fmt.Sprintf("timeline-v%d", i))},
		)
		res := d.RunTxn("c0", post, 400_000)
		record(res)
		writeLat.Add(res.Completed - res.Invoked)

		// Bob reads the timeline and the post — a read-only transaction.
		// Causal consistency guarantees he never sees a timeline entry
		// pointing at a post he cannot see.
		rot := model.NewReadOnly(model.TxnID{}, postSlot, timeline)
		rres := d.RunTxn("c1", rot, 400_000)
		record(rres)
		readLat.Add(rres.Completed - rres.Invoked)

		// Carol reads just the timeline.
		cres := d.RunTxn("c2", model.NewReadOnly(model.TxnID{}, timeline), 400_000)
		record(cres)
		readLat.Add(cres.Completed - cres.Invoked)
	}

	fmt.Println("social workload over wren (N+V+W corner):")
	fmt.Printf("  reads : %s\n", readLat.Summarize())
	fmt.Printf("  writes: %s\n", writeLat.Summarize())

	if v := history.CheckCausal(h); v.OK {
		fmt.Println("  history is causally consistent (Definition 1 checker)")
	} else {
		log.Fatalf("  CAUSAL VIOLATION: %s", v.Reason)
	}

	// The cost of the W property: reads take 2 rounds instead of 1.
	rep, err := repro.MeasureLatency("wren", repro.ReadHeavy(), 40, 5)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := repro.MeasureLatency("copssnow", repro.ReadHeavy(), 40, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread-heavy sweep: wren ROT p50 = %dµs (%.1f rounds) vs copssnow ROT p50 = %dµs (%.1f rounds)\n",
		rep.ROT.P50, rep.ROTRounds, fast.ROT.P50, fast.ROTRounds)
	fmt.Println("  — the extra round is Theorem 1's price for multi-object write transactions.")
}

// Limits: §3.4 of the paper — relax any one of the four properties
// {N, O, V, W} and the other three become achievable. This example
// characterizes the four corner designs and prints which property each
// gives up, verified by measurement.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	corners := []struct {
		name, corner, system string
	}{
		{"copssnow", "N+O+V (no W)", "COPS-SNOW [40]"},
		{"wren", "N+V+W (no O)", "Wren [54]"},
		{"fatcops", "N+O+W (no V)", "the §3.4 fat-metadata COPS sketch"},
		{"spanner", "O+V+W (no N)", "Spanner [19] / RoCoCo-SNOW [40]"},
	}
	fmt.Println("The limits of the impossibility result (§3.4): every corner of three is achievable.")
	fmt.Println()
	for _, c := range corners {
		row, err := repro.Characterize(c.name, []int64{1, 2})
		if err != nil {
			log.Fatal(err)
		}
		p := row.Profile
		fmt.Printf("%-10s %-14s models %s\n", c.name, c.corner, c.system)
		fmt.Printf("           measured: rounds=%d values/object=%d(foreign=%v) nonblocking=%v wtx=%v causal=%v\n",
			p.ROTRounds, p.ValuesPerObject, p.ForeignValues, p.NonBlocking, p.MultiWrite, p.CausalOK)
		fmt.Printf("           theorem verdict: sacrifices %s\n\n", row.Verdict.Sacrifices)
	}
	fmt.Println("No design achieves all four — Theorem 1.")
}

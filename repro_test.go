package repro

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func TestFacadeProtocols(t *testing.T) {
	names := Protocols()
	if len(names) != 14 {
		t.Fatalf("protocols = %d, want 14", len(names))
	}
	if _, err := Lookup("copssnow"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Fatal("Lookup of unknown protocol succeeded")
	}
}

func TestFacadeDeployAndRun(t *testing.T) {
	d, err := Deploy("copssnow", Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 100_000)
	if !res.OK() || res.Rounds != 1 {
		t.Fatalf("facade ROT = %v", res)
	}
}

func TestFacadeTheorem(t *testing.T) {
	v, err := RunTheorem("naivefast")
	if err != nil {
		t.Fatal(err)
	}
	if v.Sacrifices != "consistency" || v.Witness == nil {
		t.Fatalf("verdict = %+v", v)
	}
	v2, err := RunTheoremPartial("naivefast", 3)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Sacrifices != "consistency" {
		t.Fatalf("partial verdict = %q", v2.Sacrifices)
	}
}

func TestFacadeCharacterizeAndLatency(t *testing.T) {
	row, err := Characterize("wren", []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if row.Verdict.Sacrifices != "O" {
		t.Fatalf("wren sacrifices %q", row.Verdict.Sacrifices)
	}
	rep, err := MeasureLatency("copssnow", ReadHeavy(), 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ROT.N == 0 || rep.Incomplete != 0 {
		t.Fatalf("latency report = %+v", rep)
	}
	if rep.ROTRounds != 1 {
		t.Fatalf("copssnow rounds = %f", rep.ROTRounds)
	}
}

func TestFacadeTable1SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 over all protocols is slow")
	}
	out, err := Table1([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "copssnow") || !strings.Contains(out, "sacrifices") {
		t.Fatalf("table output malformed:\n%s", out)
	}
}

// Command impossibility runs the mechanical adversary of Theorem 1 (and,
// with -partial, Theorem 2) against one or all protocols (experiments E4
// and E5). For each protocol it prints the verdict: which of the four
// properties {W, O, V, N} the protocol sacrifices, or — for designs that
// claim all four — the constructed execution γ/δ whose mixed read violates
// Lemma 1, together with the induction prefixes α_k and the messages ms_k.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/trace"
)

func main() {
	name := flag.String("protocol", "", "protocol to attack (default: all)")
	partial := flag.Bool("partial", false, "use the Theorem 2 system: m servers, partial replication")
	servers := flag.Int("servers", 3, "server count for -partial")
	maxK := flag.Int("k", 8, "maximum induction depth")
	showTrace := flag.Bool("trace", false, "render the contradiction execution (Figure 3)")
	flag.Parse()

	names := core.Names()
	if *name != "" {
		names = []string{*name}
	}
	for _, n := range names {
		p := core.ByName(n)
		if p == nil {
			fmt.Fprintf(os.Stderr, "unknown protocol %q\n", n)
			os.Exit(1)
		}
		a := adversary.NewAttack(p)
		a.MaxK = *maxK
		if *partial {
			a.Cfg = protocol.Config{
				Servers: *servers, ObjectsPerServer: 1, Replication: 2,
				Clients: 2, Readers: 8, Seed: 101,
			}
		}
		v, err := a.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println(v)
		if *showTrace && len(a.LastContradictionTrace) > 0 {
			fmt.Println("\ncontradiction execution (γ/δ):")
			fmt.Print(trace.Render(a.LastContradictionTrace, nil))
		}
		fmt.Println()
	}
}

// Command table1 regenerates the paper's Table 1 from measured behaviour
// (experiment E1): for every modeled protocol it measures the fast-ROT
// sub-properties, checks consistency of randomized workloads, runs the
// theorem adversary, and prints the characterization side by side with the
// paper's claimed rows.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	trials := flag.Int("trials", 3, "randomized workload trials per protocol")
	flag.Parse()

	var seeds []int64
	for i := 1; i <= *trials; i++ {
		seeds = append(seeds, int64(i*17))
	}
	rows, err := core.Table1(seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	fmt.Println("Table 1 (measured) — characterization of the modeled systems")
	fmt.Println()
	fmt.Print(core.FormatTable1(rows))
	fmt.Println()
	fmt.Println("Paper rows for comparison:")
	paper := core.PaperRows()
	for _, r := range rows {
		fmt.Printf("  %-12s %s\n", r.Profile.Protocol, paper[r.Profile.Protocol])
	}
	fmt.Println()
	fmt.Println("Theorem 1: no row combines fast ROTs (R=1, V=1, N=yes) with WTX=yes and causal consistency.")
}

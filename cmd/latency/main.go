// Command latency runs the latency/staleness experiments (E7): read-only
// transaction latency, write latency and write-visibility staleness for
// every protocol, under read-heavy and balanced mixes. The shape to expect
// (per the paper): one-round systems beat two-round systems by roughly one
// network round trip; blocking systems pay clock-uncertainty waits; and
// systems that delay visibility (dependency checks, stable cutoffs) trade
// staleness for fast reads.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	txns := flag.Int("txns", 60, "transactions per protocol per mix")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	for _, mix := range []struct {
		name string
		mix  workload.Mix
	}{
		{"read-heavy 95/5", workload.ReadHeavy()},
		{"balanced 50/50", workload.Balanced()},
	} {
		fmt.Printf("=== %s (zipf %.2f, %d txns) ===\n", mix.name, mix.mix.ZipfS, *txns)
		reports, err := core.LatencySweep(mix.mix, *txns, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "latency:", err)
			os.Exit(1)
		}
		fmt.Print(core.FormatLatency(reports))
		fmt.Println()
	}
}

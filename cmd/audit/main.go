// Command audit verifies the §3.4 limit designs (experiment E6): each of
// the four three-property corners must achieve exactly its claimed
// properties — measured, not assumed — and pass its consistency checks:
//
//	N+O+V  copssnow  (gives up W)
//	N+V+W  wren      (gives up O)
//	N+O+W  fatcops   (gives up V)
//	O+V+W  spanner   (gives up N)
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/spec"
)

func main() {
	corners := []struct {
		name string
		give string
	}{
		{"copssnow", "W"},
		{"wren", "O"},
		{"fatcops", "V"},
		{"spanner", "N"},
	}
	fail := false
	for _, c := range corners {
		p := core.ByName(c.name)
		prof, err := spec.BuildProfile(p, protocol.Config{
			Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 7,
		}, []int64{11, 22, 33})
		if err != nil {
			fmt.Fprintln(os.Stderr, "audit:", err)
			os.Exit(1)
		}
		have := map[string]bool{
			"O": prof.ROTRounds <= 1,
			"V": prof.ValuesPerObject <= 1 && !prof.ForeignValues,
			"N": prof.NonBlocking,
			"W": prof.MultiWrite,
		}
		fmt.Printf("%-10s gives up %s: O=%v V=%v N=%v W=%v causal-check=%v\n",
			c.name, c.give, have["O"], have["V"], have["N"], have["W"], prof.CausalOK)
		for prop, got := range have {
			want := prop != c.give
			if got != want {
				fmt.Printf("  MISMATCH: property %s = %v, want %v\n", prop, got, want)
				fail = true
			}
		}
		if !prof.CausalOK {
			fmt.Printf("  MISMATCH: causal check failed: %s\n", prof.CausalReason)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("\nAll four corners achieve exactly three of {N, O, V, W} — as §3.4 predicts,")
	fmt.Println("and none achieves all four — as Theorem 1 demands.")
}

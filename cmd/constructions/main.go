// Command constructions replays the proof's figures (experiments E2, E3,
// E8):
//
//	-fig 1   the setup executions Q_in → Q_0 → C_0 (Figure 1)
//	-fig 2   Constructions 1 and 2: γ_old returns the initial values,
//	         γ_new returns the new values (Figure 2)
//	-fig 3   the contradiction execution γ = σ_old·β_new·σ_new against
//	         naivefast (Figure 3)
//	-symbols the symbol glossary (Table 2)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/copssnow"
	"repro/internal/protocols/naivefast"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	fig := flag.Int("fig", 1, "figure to reproduce (1, 2 or 3)")
	symbols := flag.Bool("symbols", false, "print the Table 2 symbol glossary")
	flag.Parse()

	if *symbols {
		printSymbols()
		return
	}
	switch *fig {
	case 1:
		figure1()
	case 2:
		figure2()
	case 3:
		figure3()
	default:
		fmt.Fprintln(os.Stderr, "unknown figure", *fig)
		os.Exit(1)
	}
}

func figure1() {
	fmt.Println("Figure 1: Q_in -> Q_0 (initializing writes) -> C_0 (c_w reads the initial values)")
	d, err := adversary.SetupC0(copssnow.New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 11})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(trace.Render(d.Kernel.Trace().Events, []sim.ProcessID{"cin0", "cin1", "c0", "s0", "s1"}))
	fmt.Println("\n" + trace.Summarize(d.Kernel.Trace().Events))
}

func figure2() {
	fmt.Println("Figure 2: Constructions 1 and 2 (probe schedules σ_old / σ_new)")
	d, err := adversary.SetupC0(naivefast.New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 13})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Construction 1 from C0: Tw not yet started — the reader returns the
	// initial values regardless of the server order.
	for _, order := range d.ProbeOrders([]string{"X0", "X1"}) {
		res := d.Probe("r0", []string{"X0", "X1"}, order, true)
		fmt.Printf("  γ_old with order %v: %v\n", order, res.Values)
	}
	// Run Tw to visibility, then Construction 2 returns the new values.
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "new_X0"}, model.Write{Object: "X1", Value: "new_X1"}))
	d.Settle(400_000)
	for _, order := range d.ProbeOrders([]string{"X0", "X1"}) {
		res := d.Probe("r1", []string{"X0", "X1"}, order, true)
		fmt.Printf("  γ_new with order %v: %v\n", order, res.Values)
	}
}

func figure3() {
	fmt.Println("Figure 3: executions β, β_new = β_p·β_s and the contradiction γ against naivefast")
	a := adversary.NewAttack(naivefast.New())
	v, err := a.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(v)
	fmt.Println()
	fmt.Print(trace.Render(a.LastContradictionTrace, nil))
}

func printSymbols() {
	rows := [][2]string{
		{"X_i", "object i (X0 stored at s0, X1 at s1)"},
		{"x_in_i", "initial value of X_i, written by T_in_i (client cin_i)"},
		{"p_i / s_i", "server storing X_i"},
		{"c_w", "client that reads the initial values and then runs Tw (client c0)"},
		{"Tw", "write-only transaction writing new values to all objects"},
		{"T_r", "read-only transaction of the reader client c_r (clients r0, r1, ...)"},
		{"Q_in, Q_0, C_0", "initial / values-visible / setup-complete configurations (Figure 1)"},
		{"σ_old, γ_old", "Construction 1: the schedule in which the reader sees the initial values"},
		{"σ_new, γ_new", "Construction 2: the schedule in which the reader sees the new values"},
		{"β, β'_p, β_p, β_s, β_new", "the solo execution reaching visibility and its filtered variants (Figure 3a)"},
		{"γ, δ", "the contradiction executions of Lemma 3 claims 1 and 2 (Figure 3b)"},
		{"α_k, ms_k, C_k", "induction prefixes, the messages that cut them, and the resulting configurations"},
	}
	fmt.Println("Table 2: symbols (paper ↔ implementation)")
	for _, r := range rows {
		fmt.Printf("  %-26s %s\n", r[0], r[1])
	}
}

// Command bench runs the closed-loop concurrent load harness over a
// protocol × mix × client-count grid and emits machine-readable JSON, one
// summary row per cell: throughput (committed transactions per virtual
// second), latency percentiles, abort and incompletion counts.
//
// Runs are fully deterministic: the same flags produce byte-identical
// output, so the JSON can be diffed across commits to track performance
// trajectories.
//
//	go run ./cmd/bench -clients 16 -txns 2000
//	go run ./cmd/bench -protocols all -clients 1,8,32 -mixes readheavy,balanced
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/workload"
)

// row is one grid cell of the benchmark output.
type row struct {
	Protocol     string  `json:"protocol"`
	MixName      string  `json:"mix"`
	ReadFraction float64 `json:"read_fraction"`
	ZipfS        float64 `json:"zipf_s"`
	Clients      int     `json:"clients"`
	Pipeline     int     `json:"pipeline"`
	Txns         int     `json:"txns"`
	Committed    int     `json:"committed"`
	Rejected     int     `json:"rejected"`
	Incomplete   int     `json:"incomplete"`
	Events       int     `json:"events"`
	DurationUs   int64   `json:"duration_us"`
	Throughput   float64 `json:"throughput_txn_per_s"`
	LatencyP50   int64   `json:"latency_p50_us"`
	LatencyP90   int64   `json:"latency_p90_us"`
	LatencyP99   int64   `json:"latency_p99_us"`
	LatencyMean  float64 `json:"latency_mean_us"`
	ROTP50       int64   `json:"rot_p50_us"`
	ROTP99       int64   `json:"rot_p99_us"`
	ROTRounds    float64 `json:"rot_rounds"`
	WriteP50     int64   `json:"write_p50_us"`
	WriteP99     int64   `json:"write_p99_us"`
}

func mixByName(name string) (workload.Mix, error) {
	switch name {
	case "readheavy":
		return workload.ReadHeavy(), nil
	case "balanced":
		return workload.Balanced(), nil
	default:
		return workload.Mix{}, fmt.Errorf("unknown mix %q (have readheavy, balanced)", name)
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	protocols := flag.String("protocols", "cops,cure,spanner",
		"comma-separated protocol names, or 'all'")
	clients := flag.String("clients", "16", "comma-separated concurrent client counts")
	txns := flag.Int("txns", 2000, "transactions per grid cell")
	mixes := flag.String("mixes", "readheavy", "comma-separated mixes (readheavy, balanced)")
	pipeline := flag.Int("pipeline", 1, "outstanding invocations per client")
	servers := flag.Int("servers", 2, "servers in the deployment")
	objects := flag.Int("objects", 2, "objects per server")
	seed := flag.Int64("seed", 42, "deterministic run seed")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	var names []string
	if *protocols == "all" {
		names = core.Names()
	} else {
		names = strings.Split(*protocols, ",")
	}
	counts, err := parseInts(*clients)
	if err != nil {
		fail(err)
	}

	var rows []row
	for _, name := range names {
		p := core.ByName(strings.TrimSpace(name))
		if p == nil {
			fail(fmt.Errorf("unknown protocol %q (have %v)", name, core.Names()))
		}
		for _, mixName := range strings.Split(*mixes, ",") {
			mixName = strings.TrimSpace(mixName)
			mix, err := mixByName(mixName)
			if err != nil {
				fail(err)
			}
			for _, c := range counts {
				rep, err := core.MeasureThroughputWith(p, mix, c, *txns, *seed, core.ThroughputOptions{
					Servers:          *servers,
					ObjectsPerServer: *objects,
					Pipeline:         *pipeline,
				})
				if err != nil {
					fail(err)
				}
				rows = append(rows, row{
					Protocol:     rep.Protocol,
					MixName:      mixName,
					ReadFraction: mix.ReadFraction,
					ZipfS:        mix.ZipfS,
					Clients:      rep.Clients,
					Pipeline:     rep.Pipeline,
					Txns:         *txns,
					Committed:    rep.Committed,
					Rejected:     rep.Rejected,
					Incomplete:   rep.Incomplete,
					Events:       rep.Events,
					DurationUs:   int64(rep.Duration),
					Throughput:   rep.Throughput,
					LatencyP50:   rep.Latency.P50,
					LatencyP90:   rep.Latency.P90,
					LatencyP99:   rep.Latency.P99,
					LatencyMean:  rep.Latency.Mean,
					ROTP50:       rep.ROT.P50,
					ROTP99:       rep.ROT.P99,
					ROTRounds:    rep.ROTRounds,
					WriteP50:     rep.Write.P50,
					WriteP99:     rep.Write.P99,
				})
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		fail(err)
	}
}

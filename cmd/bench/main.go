// Command bench runs the concurrent load harness and emits
// machine-readable JSON grids.
//
// The default mode drives the closed-loop harness over a protocol × mix ×
// servers × replication × client-count grid, one summary row per cell:
// throughput (committed transactions per virtual second), latency
// percentiles, abort and incompletion counts. The default -servers 2,4,8
// sweep charts how every protocol behaves as transactions span more
// partitions — the regime the paper's theorems speak to — and
// -replication >1 adds the partially replicated placements of Theorem 2.
//
// Cells step under the sharded conservative-lookahead engine by default
// (-workers 1: the process set is partitioned into one shard per server
// and each shard advances to its Chandy–Misra null-message bound; see
// internal/sim.NewLookaheadRunner). -workers N executes the identical
// schedule on N goroutines: every cell is a function of the shard
// partition and seed, never of the worker count, so two runs differing
// only in -workers emit byte-identical JSON (the CI equivalence smoke
// diffs them). -barrier selects the window-synchronized barrier engine
// instead (same schedule, more rounds), -rebalance recomputes the
// client→shard striping from a deterministic probe run, and -workers 0
// selects the legacy serial scheduler (a different, also deterministic,
// schedule). Sharded rows carry engine/shards/rounds/
// critical_path_events plus the lookahead shape (null_advances,
// blocked_shard_rounds, blocked_time_us): events ÷ critical_path_events
// is the cell's measured shard-parallelism — the speedup ceiling of a
// perfectly balanced worker pool.
//
// With -curve it instead sweeps open-loop offered load over a protocol ×
// mix × servers × replication × rate grid: each protocol's saturated
// throughput is estimated closed-loop, then one open-loop run per
// -fractions entry charts the latency–throughput curve, with queueing
// delay and service latency reported separately and the knee of the
// curve on every row.
//
// With -certify each cell (closed-loop grid and -curve points alike) is
// certified ride-along: committed transactions feed a streaming
// history.Session at the protocol's claimed consistency level while the
// run executes, evicting committed closure prefixes as their outcomes
// pin, so -txns has no certification ceiling — a violating cell reports
// the first offending commit (first_violation_txn). Cells at or below
// history.MaxTxns transactions additionally record their history and
// re-solve it with the one-shot batch checker as a cross-check; both
// wall-clocks land in the row (cert_wall_ms incremental vs
// cert_batch_wall_ms, the latter zero past the ceiling) — the
// certification half of the measurement story: a throughput number only
// counts if the history behind it checks out.
//
// -txns is a sweep axis in both modes (as is -curveclients in curve
// mode), so one invocation can chart cost against run length. -stale
// samples committed writes in closed-loop cells with a frozen
// reserved-reader visibility probe (stale_probes/stale_hits/
// stale_incomplete); -refineknee bisects each curve's queueing/service
// crossover with longer-window points after the fraction sweep.
//
// Runs are fully deterministic: the same flags produce byte-identical
// output, so the JSON can be diffed across commits to track performance
// trajectories. (Exception: cert_wall_ms and cert_batch_wall_ms under
// -certify are wall-clock; every other field — the -stale tallies
// included — stays deterministic.)
//
//	go run ./cmd/bench -clients 16 -txns 2000
//	go run ./cmd/bench -protocols all -clients 1,8,32 -mixes readheavy,balanced
//	go run ./cmd/bench -servers 2,4,8 -replication 1,2 -workers 4 -txns 2000
//	go run ./cmd/bench -certify -protocols cops -servers 4 -clients 16,256 -txns 2000,100000
//	go run ./cmd/bench -stale -protocols cops,cure -clients 16
//	go run ./cmd/bench -curve -certify -refineknee -protocols cops,spanner -fractions 0.1,0.5,0.9,1.1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/workload"
)

// row is one grid cell of the benchmark output. The worker count is
// deliberately NOT a column: sharded cells are a function of the shard
// partition and seed only, so grids produced with different -workers
// settings must diff byte-identically (the CI equivalence smoke relies
// on it).
type row struct {
	Protocol     string  `json:"protocol"`
	MixName      string  `json:"mix"`
	ReadFraction float64 `json:"read_fraction"`
	ZipfS        float64 `json:"zipf_s"`
	Servers      int     `json:"servers"`
	Replication  int     `json:"replication"`
	Topology     string  `json:"topology,omitempty"`
	Sites        int     `json:"sites,omitempty"`
	Clients      int     `json:"clients"`
	Pipeline     int     `json:"pipeline"`
	Txns         int     `json:"txns"`
	Committed    int     `json:"committed"`
	Rejected     int     `json:"rejected"`
	Incomplete   int     `json:"incomplete"`
	Events       int     `json:"events"`
	DurationUs   int64   `json:"duration_us"`
	Throughput   float64 `json:"throughput_txn_per_s"`
	LatencyP50   int64   `json:"latency_p50_us"`
	LatencyP90   int64   `json:"latency_p90_us"`
	LatencyP99   int64   `json:"latency_p99_us"`
	LatencyMean  float64 `json:"latency_mean_us"`
	ROTP50       int64   `json:"rot_p50_us"`
	ROTP99       int64   `json:"rot_p99_us"`
	ROTRounds    float64 `json:"rot_rounds"`
	WriteP50     int64   `json:"write_p50_us"`
	WriteP99     int64   `json:"write_p99_us"`

	// Sharded-stepping shape columns (present with -workers ≥ 1), shared
	// with the -curve rows. All deterministic: critical_path_events is
	// the serialized run length under unbounded workers, so
	// events/critical_path_events is the measured shard-parallelism of
	// the cell.
	shardCols

	// Certification columns, shared with the -curve rows (present with
	// -certify only).
	certCols

	// Staleness-probe columns (present with -stale only).
	staleCols

	// Nemesis fault-injection columns (present with -nemesis only; all
	// omitted on fault-free rows so existing grids stay byte-diffable).
	nemCols
}

// shardCols is the sharded-stepping column set (empty under -workers 0).
// engine names the stepping engine ("lookahead" or "barrier");
// null_advances counts shard-rounds that advanced past the global
// barrier edge on a null-message bound, blocked_shard_rounds/
// blocked_time_us the shard-rounds (and summed virtual time) spent
// waiting on a peer's bound — both zero under the barrier engine, which
// is exactly the comparison E13 charts.
type shardCols struct {
	Shards             int    `json:"shards,omitempty"`
	Engine             string `json:"engine,omitempty"`
	Rounds             int    `json:"rounds,omitempty"`
	CriticalPathEvent  int    `json:"critical_path_events,omitempty"`
	NullAdvances       int    `json:"null_advances,omitempty"`
	BlockedShardRounds int    `json:"blocked_shard_rounds,omitempty"`
	BlockedTimeUs      int64  `json:"blocked_time_us,omitempty"`
	Rebalanced         bool   `json:"rebalanced,omitempty"`
}

// shardCells fills the sharded-stepping columns from a run's stats.
func shardCells(r *shardCols, s *sim.ShardingStats) {
	if s == nil {
		return
	}
	r.Shards = s.Shards
	r.Engine = "barrier"
	if s.Lookahead {
		r.Engine = "lookahead"
	}
	r.Rounds = s.Rounds
	r.CriticalPathEvent = s.CriticalEvents
	r.NullAdvances = s.NullAdvances
	r.BlockedShardRounds = s.BlockedShardRounds
	r.BlockedTimeUs = int64(s.BlockedTime)
	r.Rebalanced = s.Rebalanced
}

// certCols is the certification column set every certified grid row
// carries. cert is "ok" or "violation"; first_violation_txn is the
// append index of the first offending commit on a violation;
// cert_wall_ms is the ride-along session's cumulative wall-clock and
// cert_batch_wall_ms the batch re-check's — the two nondeterministic
// fields in the output, so -certify runs are not byte-diffable across
// commits; everything else still is.
type certCols struct {
	Cert              string  `json:"cert,omitempty"`
	CertLevel         string  `json:"cert_level,omitempty"`
	CertReason        string  `json:"cert_reason,omitempty"`
	CertTxns          int     `json:"cert_txns,omitempty"`
	FirstViolationTxn *int    `json:"first_violation_txn,omitempty"`
	CertWallMS        float64 `json:"cert_wall_ms,omitempty"`
	CertBatchWallMS   float64 `json:"cert_batch_wall_ms,omitempty"`
}

// certCells fills the certification columns from a measured outcome.
func certCells(r *certCols, c core.Certification) {
	r.Cert = "ok"
	if !c.OK {
		r.Cert = "violation"
		fv := c.FirstViolation
		r.FirstViolationTxn = &fv
	}
	r.CertLevel = c.Level
	r.CertReason = c.Reason
	r.CertTxns = c.Txns
	r.CertWallMS = float64(c.IncrementalWall.Microseconds()) / 1000
	r.CertBatchWallMS = float64(c.BatchWall.Microseconds()) / 1000
}

// staleCols is the staleness-probe column set (present with -stale
// only). stale_probes counts sampled committed writes, stale_hits the
// probes whose write was not yet fully visible to the frozen reserved
// reader, stale_incomplete the probes whose read could not even finish
// on the frozen schedule. Probes run on kernel snapshots between events,
// so unlike the cert wall-clocks all three tallies are deterministic and
// byte-diffable.
type staleCols struct {
	StaleProbes     int `json:"stale_probes,omitempty"`
	StaleHits       int `json:"stale_hits,omitempty"`
	StaleIncomplete int `json:"stale_incomplete,omitempty"`
}

// staleCells fills the staleness columns from a run's probe report.
func staleCells(r *staleCols, s *driver.StalenessReport) {
	if s == nil {
		return
	}
	r.StaleProbes = s.Probes
	r.StaleHits = s.Stale
	r.StaleIncomplete = s.Incomplete
}

// nemCols is the fault-injection column set (present with -nemesis only).
// nem_faults counts applied faults; nem_unavailable_us the merged virtual
// time some fault was active; nem_recovery_p50_us the median heal/restart
// → first-qualifying-commit latency; nem_faulted_committed the commits
// whose lifetime crossed a fault window. All deterministic: faults are
// part of the schedule, so -nemesis grids diff byte-identically across
// worker counts like every other grid.
type nemCols struct {
	NemFaults           int   `json:"nem_faults,omitempty"`
	NemCrashes          int   `json:"nem_crashes,omitempty"`
	NemPartitions       int   `json:"nem_partitions,omitempty"`
	NemUnavailableUs    int64 `json:"nem_unavailable_us,omitempty"`
	NemRecoveries       int   `json:"nem_recoveries,omitempty"`
	NemUnrecovered      int   `json:"nem_unrecovered,omitempty"`
	NemRecoveryP50Us    int64 `json:"nem_recovery_p50_us,omitempty"`
	NemRecoveryMaxUs    int64 `json:"nem_recovery_max_us,omitempty"`
	NemLostMsgs         int64 `json:"nem_lost_msgs,omitempty"`
	NemFaultedCommitted int   `json:"nem_faulted_committed,omitempty"`
	NemFaultedRejected  int   `json:"nem_faulted_rejected,omitempty"`
	NemFaultedP99Us     int64 `json:"nem_faulted_p99_us,omitempty"`
	// Reconfiguration columns (nonzero under -nemesis replace/restore):
	// nem_sync_versions is the total state replacements adopted (durable
	// image + peer transfer), nem_sync_peer_versions the peer-transferred
	// share, nem_sync_time_us the summed deterministic catch-up duration,
	// nem_sync_committed / nem_sync_p99_us the replacement-phase slice —
	// commits whose lifetime crossed a catch-up window.
	NemReplacements     int   `json:"nem_replacements,omitempty"`
	NemRestores         int   `json:"nem_restores,omitempty"`
	NemSyncVersions     int64 `json:"nem_sync_versions,omitempty"`
	NemSyncPeerVersions int64 `json:"nem_sync_peer_versions,omitempty"`
	NemSyncTimeUs       int64 `json:"nem_sync_time_us,omitempty"`
	NemSyncCommitted    int   `json:"nem_sync_committed,omitempty"`
	NemSyncP99Us        int64 `json:"nem_sync_p99_us,omitempty"`
}

// nemCells fills the nemesis columns from a run's fault report.
func nemCells(r *nemCols, n *driver.NemesisReport) {
	if n == nil {
		return
	}
	r.NemFaults = n.Applied
	r.NemCrashes = n.Crashes
	r.NemPartitions = n.Partitions
	r.NemUnavailableUs = int64(n.UnavailableTime)
	r.NemRecoveries = n.Recoveries
	r.NemUnrecovered = n.Unrecovered
	r.NemRecoveryP50Us = n.RecoveryLatency.P50
	r.NemRecoveryMaxUs = n.RecoveryLatency.Max
	r.NemLostMsgs = n.LostMessages
	r.NemFaultedCommitted = n.FaultedCommitted
	r.NemFaultedRejected = n.FaultedRejected
	r.NemFaultedP99Us = n.FaultedLatency.P99
	r.NemReplacements = n.Replacements
	r.NemRestores = n.Restores
	r.NemSyncVersions = n.SyncedVersions
	r.NemSyncPeerVersions = n.PeerSyncedVersions
	r.NemSyncTimeUs = int64(n.SyncTime)
	r.NemSyncCommitted = n.SyncPhaseCommitted
	r.NemSyncP99Us = n.SyncPhaseLatency.P99
}

// nemesisByName resolves the -nemesis flag to a named fault schedule.
// Schedules are sized for the default grid cells (≥ a few hundred txns):
// faults land well inside the measured phase, downtime is an order of
// magnitude above the latency ceiling, and everything heals before the
// run drains.
func nemesisByName(name string) (*driver.Nemesis, error) {
	switch name {
	case "":
		return nil, nil
	case "crash":
		return &driver.Nemesis{Crashes: 2, Start: 20_000, Period: 200_000, Duration: 10_000}, nil
	case "crash-lose":
		return &driver.Nemesis{Crashes: 1, Lose: true, Start: 20_000, Duration: 10_000}, nil
	case "partition":
		return &driver.Nemesis{Partitions: 1, Start: 20_000, Duration: 15_000}, nil
	case "crash+partition":
		return &driver.Nemesis{Crashes: 1, Partitions: 1, Start: 20_000, Period: 120_000, Duration: 10_000}, nil
	case "replace":
		// One mid-run replica replacement (fires at Start+Period/4): the
		// durable image reattaches and the replacement catches up from
		// live peers before serving.
		return &driver.Nemesis{Replaces: 1, Start: 20_000, Period: 80_000}, nil
	case "replace-lose":
		// Replacement with the disk gone: the fresh process owns only what
		// live peers transfer — real data loss under disjoint placement.
		return &driver.Nemesis{Replaces: 1, Lose: true, Start: 20_000, Period: 80_000}, nil
	case "restore":
		// One coordinated whole-cluster stop-and-rebuild from durable
		// snapshots (fires at Start+3·Period/4).
		return &driver.Nemesis{Restores: 1, Start: 20_000, Period: 80_000}, nil
	default:
		return nil, fmt.Errorf("unknown nemesis %q (have crash, crash-lose, partition, crash+partition, replace, replace-lose, restore)", name)
	}
}

func mixByName(name string) (workload.Mix, error) {
	switch name {
	case "readheavy":
		return workload.ReadHeavy(), nil
	case "balanced":
		return workload.Balanced(), nil
	default:
		return workload.Mix{}, fmt.Errorf("unknown mix %q (have readheavy, balanced)", name)
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// gridConfig parameterizes a closed-loop grid build.
type gridConfig struct {
	protocols   []string
	mixes       []string
	clients     []int
	servers     []int
	replication []int
	topologies  []string
	txns        []int
	pipeline    int
	objects     int
	seed        int64
	certify     bool
	stale       bool
	workers     int
	barrier     bool
	rebalance   bool
	nemesis     string
}

// buildGrid measures every protocol × mix × servers × replication ×
// client-count cell closed-loop. Fully deterministic for a fixed config
// (worker count excluded: it only parallelizes the stepping).
func buildGrid(cfg gridConfig) ([]row, error) {
	if len(cfg.topologies) == 0 {
		cfg.topologies = []string{"uniform"} // the pre-topology default
	}
	nem, err := nemesisByName(cfg.nemesis)
	if err != nil {
		return nil, err
	}
	rows := []row{}
	for _, name := range cfg.protocols {
		p := core.ByName(strings.TrimSpace(name))
		if p == nil {
			return nil, fmt.Errorf("unknown protocol %q (have %v)", name, core.Names())
		}
		for _, mixName := range cfg.mixes {
			mixName = strings.TrimSpace(mixName)
			mix, err := mixByName(mixName)
			if err != nil {
				return nil, err
			}
			for _, topoName := range cfg.topologies {
				topoName = strings.TrimSpace(topoName)
				topo, err := protocol.TopologyByName(topoName)
				if err != nil {
					return nil, err
				}
				for _, srv := range cfg.servers {
					for _, repl := range cfg.replication {
						if repl > srv {
							continue // replication factor cannot exceed servers
						}
						for _, txns := range cfg.txns {
							for _, c := range cfg.clients {
								rep, err := core.MeasureThroughputWith(p, mix, c, txns, cfg.seed, core.ThroughputOptions{
									Servers:          srv,
									ObjectsPerServer: cfg.objects,
									Replication:      repl,
									Pipeline:         cfg.pipeline,
									Topology:         topo,
									Certify:          cfg.certify,
									ProbeStaleness:   cfg.stale,
									Workers:          cfg.workers,
									Barrier:          cfg.barrier,
									Rebalance:        cfg.rebalance,
									Nemesis:          nem,
								})
								if err != nil {
									return nil, err
								}
								r := row{
									Protocol:     rep.Protocol,
									MixName:      mixName,
									ReadFraction: mix.ReadFraction,
									ZipfS:        mix.ZipfS,
									Servers:      srv,
									Replication:  repl,
									Clients:      rep.Clients,
									Pipeline:     rep.Pipeline,
									Txns:         txns,
									Committed:    rep.Committed,
									Rejected:     rep.Rejected,
									Incomplete:   rep.Incomplete,
									Events:       rep.Events,
									DurationUs:   int64(rep.Duration),
									Throughput:   rep.Throughput,
									LatencyP50:   rep.Latency.P50,
									LatencyP90:   rep.Latency.P90,
									LatencyP99:   rep.Latency.P99,
									LatencyMean:  rep.Latency.Mean,
									ROTP50:       rep.ROT.P50,
									ROTP99:       rep.ROT.P99,
									ROTRounds:    rep.ROTRounds,
									WriteP50:     rep.Write.P50,
									WriteP99:     rep.Write.P99,
								}
								if topo != nil {
									r.Topology = topo.Name
									r.Sites = topo.Sites
								}
								shardCells(&r.shardCols, rep.Sharding)
								if cfg.certify {
									certCells(&r.certCols, rep.Cert)
								}
								staleCells(&r.staleCols, rep.Staleness)
								nemCells(&r.nemCols, rep.Nemesis)
								rows = append(rows, r)
							}
						}
					}
				}
			}
		}
	}
	return rows, nil
}

func main() {
	protocols := flag.String("protocols", "cops,cure,spanner",
		"comma-separated protocol names, or 'all'")
	clients := flag.String("clients", "16", "comma-separated concurrent client counts")
	txns := flag.String("txns", "2000",
		"comma-separated transactions-per-cell counts: a sweep axis in both "+
			"modes (each count is a full grid/curve pass)")
	mixes := flag.String("mixes", "readheavy", "comma-separated mixes (readheavy, balanced)")
	pipeline := flag.Int("pipeline", 1, "outstanding invocations per client")
	servers := flag.String("servers", "2,4,8",
		"comma-separated server counts: the default grid charts the multi-server cells")
	replication := flag.String("replication", "1",
		"comma-separated replication factors (>1 deploys the partially replicated placement; factors exceeding the cell's server count are skipped)")
	topology := flag.String("topology", "uniform",
		"comma-separated deployment topologies (uniform, 2site, 3site): multi-site "+
			"cells draw intra-site latencies from [100,300]us and cross-site from "+
			"[2000,4000]us with matching per-link floors, the regime where per-link "+
			"lookahead separates from the barrier engine")
	objects := flag.Int("objects", 2, "objects per server")
	seed := flag.Int64("seed", 42, "deterministic run seed")
	workers := flag.Int("workers", 1,
		"stepping engine: 0 = legacy serial scheduler; >= 1 = sharded stepping "+
			"(one shard per server) on that many goroutines — cells are identical "+
			"for every workers >= 1, so outputs diff byte-for-byte across worker counts")
	barrier := flag.Bool("barrier", false,
		"use the window-synchronized barrier engine instead of conservative "+
			"lookahead for sharded cells (identical schedule and numbers, more "+
			"rounds; requires -workers >= 1)")
	rebalance := flag.Bool("rebalance", false,
		"recompute the client-to-shard striping per cell from a deterministic "+
			"probe run's per-shard event counts (requires -workers >= 1; the "+
			"chosen partition changes the cell's schedule, deterministically)")
	certify := flag.Bool("certify", false, fmt.Sprintf(
		"certify each cell ride-along at the protocol's claimed consistency "+
			"level (adds cert fields incl. first_violation_txn to the grid): "+
			"the streaming session retires committed prefixes as it goes, so "+
			"-txns has no certification ceiling; cells at or below %d txns "+
			"(history.MaxTxns) are additionally re-solved by the batch checker "+
			"as a cross-check (cert_batch_wall_ms; zero past the ceiling). "+
			"cert_wall_ms/cert_batch_wall_ms are wall-clock, so output is no "+
			"longer byte-diffable", history.MaxTxns))
	stale := flag.Bool("stale", false,
		"closed-loop grid only: sample committed writes with a frozen "+
			"reserved-reader visibility probe and add stale_probes/stale_hits/"+
			"stale_incomplete columns (deterministic: probes run on kernel "+
			"snapshots between events and never perturb the run)")
	nemesis := flag.String("nemesis", "",
		"closed-loop grid only: inject a deterministic fault schedule into "+
			"every cell (crash, crash-lose, partition, crash+partition, "+
			"replace, replace-lose, restore) and add nem_* columns — applied "+
			"faults, unavailability, recovery latency, degraded-phase counts, "+
			"and for reconfiguration schedules the replacement catch-up cost "+
			"(nem_sync_* columns). The schedule is a pure function of the seed "+
			"and cell config, so -nemesis grids stay byte-diffable across "+
			"worker counts; fault-free rows omit the columns entirely")
	refineKnee := flag.Bool("refineknee", false,
		"curve mode: after the -fractions sweep, bisect the queueing/service "+
			"crossover with longer-window open-loop points (rows marked "+
			"\"refined\": true) instead of quantizing the knee to the swept "+
			"fractions; swept rows stay byte-identical to an unrefined sweep")
	curve := flag.Bool("curve", false,
		"sweep open-loop offered load instead of closed-loop client counts")
	fractions := flag.String("fractions", "0.1,0.25,0.5,0.75,0.9,1.1",
		"curve mode: comma-separated fractions of saturated throughput to offer")
	curveClients := flag.String("curveclients", "8",
		"curve mode: comma-separated client counts receiving arrivals (a sweep axis)")
	arrivals := flag.String("arrivals", "poisson", "curve mode: arrival process (poisson, uniform)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	var names []string
	if *protocols == "all" {
		names = core.Names()
	} else {
		names = strings.Split(*protocols, ",")
	}
	mixNames := strings.Split(*mixes, ",")
	serverCounts, err := parseInts(*servers)
	if err != nil {
		fail(fmt.Errorf("-servers: %w", err))
	}
	replFactors, err := parseInts(*replication)
	if err != nil {
		fail(fmt.Errorf("-replication: %w", err))
	}
	txnCounts, err := parseInts(*txns)
	if err != nil {
		fail(fmt.Errorf("-txns: %w", err))
	}

	var out any
	if *curve {
		if *nemesis != "" {
			fail(fmt.Errorf("-nemesis is closed-loop-grid only (fault windows would confound the open-loop latency curve)"))
		}
		fracs, err := parseFloats(*fractions)
		if err != nil {
			fail(err)
		}
		if *arrivals != "poisson" && *arrivals != "uniform" {
			fail(fmt.Errorf("unknown arrival process %q (have poisson, uniform)", *arrivals))
		}
		curveCounts, err := parseInts(*curveClients)
		if err != nil {
			fail(fmt.Errorf("-curveclients: %w", err))
		}
		rows, err := buildCurve(curveConfig{
			protocols: names, mixes: mixNames, fractions: fracs,
			clients: curveCounts, txns: txnCounts,
			servers: serverCounts, replication: replFactors,
			topologies: strings.Split(*topology, ","),
			objects:    *objects, seed: *seed,
			uniform: *arrivals == "uniform", certify: *certify,
			refineKnee: *refineKnee,
			workers:    *workers, barrier: *barrier, rebalance: *rebalance,
		})
		if err != nil {
			fail(err)
		}
		out = rows
	} else {
		counts, err := parseInts(*clients)
		if err != nil {
			fail(err)
		}
		rows, err := buildGrid(gridConfig{
			protocols: names, mixes: mixNames, clients: counts,
			txns: txnCounts, pipeline: *pipeline,
			servers: serverCounts, replication: replFactors,
			topologies: strings.Split(*topology, ","),
			objects:    *objects, seed: *seed,
			certify: *certify, stale: *stale,
			workers: *workers,
			barrier: *barrier, rebalance: *rebalance,
			nemesis: *nemesis,
		})
		if err != nil {
			fail(err)
		}
		out = rows
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fail(err)
	}
}

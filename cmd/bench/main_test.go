package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func encode(t *testing.T, v any) string {
	t.Helper()
	js, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(js)
}

func requireIdentical(t *testing.T, what, a, b string) {
	t.Helper()
	if a == b {
		return
	}
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			t.Fatalf("%s diverged at line %d:\n  run 1: %s\n  run 2: %s", what, i+1, la[i], lb[i])
		}
	}
	t.Fatalf("%s diverged in length: %d vs %d lines", what, len(la), len(lb))
}

// TestGridJSONByteIdentical: the closed-loop grid is the bench's contract
// — the same config must emit byte-identical JSON across runs so output
// can be diffed across commits.
func TestGridJSONByteIdentical(t *testing.T) {
	cfg := gridConfig{
		protocols: []string{"cops", "spanner"},
		mixes:     []string{"readheavy", "balanced"},
		clients:   []int{2, 8},
		txns:      []int{120}, pipeline: 1,
		servers: []int{2}, replication: []int{1},
		objects: 2, seed: 42, workers: 1,
	}
	run := func() string {
		rows, err := buildGrid(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return encode(t, rows)
	}
	requireIdentical(t, "grid JSON", run(), run())
}

// TestGridWorkersByteIdentical is the bench-level serial-equals-parallel
// contract, for both sharded engines: the same grid built with Workers=1
// (serial sharded stepping, the oracle) and Workers=4 must emit
// byte-identical JSON — worker count parallelizes the stepping, it never
// touches the schedule.
func TestGridWorkersByteIdentical(t *testing.T) {
	base := gridConfig{
		protocols: []string{"cops", "cure"},
		mixes:     []string{"readheavy"},
		clients:   []int{8},
		txns:      []int{120}, pipeline: 1,
		servers: []int{2, 4}, replication: []int{1},
		objects: 2, seed: 42,
	}
	for _, eng := range []struct {
		name    string
		barrier bool
	}{{"lookahead", false}, {"barrier", true}} {
		run := func(workers int) string {
			cfg := base
			cfg.workers = workers
			cfg.barrier = eng.barrier
			rows, err := buildGrid(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if r.Shards == 0 || r.Rounds == 0 || r.CriticalPathEvent == 0 {
					t.Fatalf("sharded columns missing: %+v", r)
				}
				if r.Engine != eng.name {
					t.Fatalf("engine column %q, want %q", r.Engine, eng.name)
				}
				if r.CriticalPathEvent > r.Events {
					t.Fatalf("critical path %d exceeds events %d", r.CriticalPathEvent, r.Events)
				}
			}
			return encode(t, rows)
		}
		requireIdentical(t, eng.name+" workers grid JSON", run(1), run(4))
	}
}

// TestGridEngineColumns pins the lookahead shape columns: lookahead
// cells report null-message-bound advances (the mechanism is exercised
// on every multi-shard cell), barrier cells never do, and -rebalance
// marks its rows and stays deterministic across repeats.
func TestGridEngineColumns(t *testing.T) {
	base := gridConfig{
		protocols: []string{"cops"},
		mixes:     []string{"readheavy"},
		clients:   []int{8},
		txns:      []int{120}, pipeline: 1,
		servers: []int{4}, replication: []int{1},
		objects: 2, seed: 42, workers: 1,
	}
	grid := func(cfg gridConfig) []row {
		rows, err := buildGrid(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("rows = %d, want 1", len(rows))
		}
		return rows
	}
	la := grid(base)[0]
	if la.Engine != "lookahead" || la.NullAdvances == 0 {
		t.Fatalf("lookahead cell must report null advances: %+v", la.shardCols)
	}
	if la.Rebalanced {
		t.Fatalf("unrebalanced cell marked rebalanced: %+v", la.shardCols)
	}
	bcfg := base
	bcfg.barrier = true
	ba := grid(bcfg)[0]
	if ba.Engine != "barrier" || ba.NullAdvances != 0 || ba.BlockedShardRounds != 0 || ba.BlockedTimeUs != 0 {
		t.Fatalf("barrier cell carries lookahead columns: %+v", ba.shardCols)
	}
	rcfg := base
	rcfg.rebalance = true
	rb := grid(rcfg)[0]
	if !rb.Rebalanced {
		t.Fatalf("rebalanced cell not marked: %+v", rb.shardCols)
	}
	requireIdentical(t, "rebalance repeat", encode(t, rb), encode(t, grid(rcfg)[0]))
}

// TestGridServerSweep: the multi-server default sweep produces one cell
// per server count with shard count matching, and skips replication
// factors exceeding the cell's servers.
func TestGridServerSweep(t *testing.T) {
	rows, err := buildGrid(gridConfig{
		protocols: []string{"cops"},
		mixes:     []string{"readheavy"},
		clients:   []int{4},
		txns:      []int{60}, pipeline: 1,
		servers: []int{2, 4, 8}, replication: []int{1, 4},
		objects: 1, seed: 7, workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// servers 2: repl 1 only (4 > 2 skipped); servers 4 and 8: repl 1 and 4.
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	seen := map[[2]int]bool{}
	for _, r := range rows {
		seen[[2]int{r.Servers, r.Replication}] = true
		if r.Shards != r.Servers {
			t.Fatalf("cell %d servers has %d shards, want one per server", r.Servers, r.Shards)
		}
		if r.Committed == 0 {
			t.Fatalf("empty cell: %+v", r)
		}
	}
	for _, want := range [][2]int{{2, 1}, {4, 1}, {4, 4}, {8, 1}, {8, 4}} {
		if !seen[want] {
			t.Fatalf("missing cell servers=%d replication=%d", want[0], want[1])
		}
	}
}

// TestCertifyGrid: with certification on, every cell carries a verdict at
// the protocol's claimed level, and the deterministic fields (everything
// but the wall-clock) are identical across runs. cops (causal) must
// certify clean; naivefast is the theorem's victim and must be caught.
func TestCertifyGrid(t *testing.T) {
	cfg := gridConfig{
		protocols: []string{"cops", "naivefast"},
		mixes:     []string{"balanced"},
		clients:   []int{8},
		txns:      []int{96}, pipeline: 1,
		servers: []int{2}, replication: []int{1},
		objects: 1, seed: 2,
		certify: true, workers: 1,
	}
	run := func() []row {
		rows, err := buildGrid(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	rows := run()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	byProto := map[string]row{}
	for _, r := range rows {
		if r.Cert == "" || r.CertLevel == "" || r.CertTxns == 0 {
			t.Fatalf("certification fields missing: %+v", r)
		}
		byProto[r.Protocol] = r
	}
	if byProto["cops"].Cert != "ok" {
		t.Fatalf("cops failed certification: %s", byProto["cops"].CertReason)
	}
	if byProto["cops"].FirstViolationTxn != nil {
		t.Fatalf("clean cell carries first_violation_txn %d", *byProto["cops"].FirstViolationTxn)
	}
	if byProto["naivefast"].Cert != "violation" {
		t.Fatal("naivefast certified clean — the harness lost the theorem's victim")
	}
	if fv := byProto["naivefast"].FirstViolationTxn; fv == nil || *fv < 0 || *fv >= byProto["naivefast"].CertTxns {
		t.Fatalf("violating cell must pin the first offending commit: %+v", fv)
	}
	// Everything except the wall-clocks must be deterministic.
	again := run()
	for i := range rows {
		a, b := rows[i], again[i]
		a.CertWallMS, b.CertWallMS = 0, 0
		a.CertBatchWallMS, b.CertBatchWallMS = 0, 0
		requireIdentical(t, "certify grid JSON", encode(t, a), encode(t, b))
	}
}

// TestGridTxnsSweepAndStale: -txns is a sweep axis (one full grid pass
// per count) and -stale adds the deterministic visibility-probe tallies
// to every row.
func TestGridTxnsSweepAndStale(t *testing.T) {
	cfg := gridConfig{
		protocols: []string{"cops"},
		mixes:     []string{"balanced"},
		clients:   []int{4},
		txns:      []int{60, 120}, pipeline: 1,
		servers: []int{2}, replication: []int{1},
		objects: 1, seed: 2, stale: true, workers: 1,
	}
	run := func() []row {
		rows, err := buildGrid(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	rows := run()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want one per -txns count", len(rows))
	}
	for i, want := range []int{60, 120} {
		r := rows[i]
		if r.Txns != want {
			t.Fatalf("row %d txns = %d, want %d", i, r.Txns, want)
		}
		if r.StaleProbes == 0 {
			t.Fatalf("row %d carries no staleness probes: %+v", i, r.staleCols)
		}
		if r.StaleHits > r.StaleProbes || r.StaleIncomplete > r.StaleProbes {
			t.Fatalf("row %d staleness tallies exceed probes: %+v", i, r.staleCols)
		}
	}
	if rows[0].Committed >= rows[1].Committed {
		t.Fatalf("longer cell committed less: %d vs %d", rows[0].Committed, rows[1].Committed)
	}
	// The probe tallies are snapshot-deterministic, so the whole grid —
	// staleness columns included — must stay byte-diffable.
	requireIdentical(t, "stale grid JSON", encode(t, rows), encode(t, run()))
}

// TestCurveRefineKnee: -refineknee appends bisection rows after the
// swept fractions, marked refined with the doubled window in the txns
// column, without perturbing the swept rows.
func TestCurveRefineKnee(t *testing.T) {
	cfg := curveConfig{
		protocols: []string{"cops"}, mixes: []string{"readheavy"},
		fractions: []float64{0.1, 1.2}, clients: []int{4}, txns: []int{80},
		servers: []int{2}, replication: []int{1},
		objects: 2, seed: 7, workers: 1,
	}
	base, err := buildCurve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.refineKnee = true
	refined, err := buildCurve(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(refined) <= len(base) {
		t.Fatalf("refinement added no rows: %d vs %d", len(refined), len(base))
	}
	for i, r := range base {
		got := refined[i]
		// The refined sweep recomputes the knee over all points, so the
		// knee column may differ; everything else on a swept row must not.
		got.Knee = r.Knee
		requireIdentical(t, "swept curve row", encode(t, r), encode(t, got))
	}
	for _, r := range refined[len(base):] {
		if !r.Refined {
			t.Fatalf("bisection row not marked refined: %+v", r)
		}
		if r.Txns != 2*80 {
			t.Fatalf("bisection row txns = %d, want the doubled window", r.Txns)
		}
	}
}

// TestCurveJSONByteIdentical: same for the open-loop curve grid,
// including the Poisson arrival stream.
func TestCurveJSONByteIdentical(t *testing.T) {
	cfg := curveConfig{
		protocols: []string{"cops", "cure"},
		mixes:     []string{"readheavy"},
		fractions: []float64{0.1, 0.9},
		clients:   []int{4}, txns: []int{100},
		servers: []int{2}, replication: []int{1},
		objects: 2, seed: 42, workers: 1,
	}
	run := func() string {
		rows, err := buildCurve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return encode(t, rows)
	}
	requireIdentical(t, "curve JSON", run(), run())
}

// TestCurveGridShape checks the grid covers protocol × mix × rate and
// carries the open-loop fields.
func TestCurveGridShape(t *testing.T) {
	rows, err := buildCurve(curveConfig{
		protocols: []string{"cops"}, mixes: []string{"readheavy"},
		fractions: []float64{0.25, 1.2}, clients: []int{4}, txns: []int{80},
		servers: []int{2}, replication: []int{1},
		objects: 2, seed: 7, uniform: true, workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Arrivals != "uniform" || r.Saturated <= 0 || r.Offered <= 0 {
			t.Fatalf("malformed row: %+v", r)
		}
		if r.ServiceP50 <= 0 || r.Committed == 0 {
			t.Fatalf("open-loop fields missing: %+v", r)
		}
	}
	if rows[0].Knee != rows[1].Knee {
		t.Fatalf("knee differs within one curve: %f vs %f", rows[0].Knee, rows[1].Knee)
	}
}

// TestGridTopology is the bench-level tentpole pin: a -topology
// uniform,2site sweep emits one row per topology per cell, the 2site
// rows carry the topology/sites columns (uniform rows omit them, so
// pre-topology grids stay byte-diffable), and on the 2site cell the
// lookahead engine's rounds beat the barrier engine's — the per-link
// cross-site floors reaching sim's shard-pair bounds. Deterministic
// across repeats.
func TestGridTopology(t *testing.T) {
	base := gridConfig{
		protocols: []string{"cops"},
		mixes:     []string{"readheavy"},
		clients:   []int{8},
		txns:      []int{120}, pipeline: 1,
		servers: []int{4}, replication: []int{1},
		topologies: []string{"uniform", "2site"},
		objects:    2, seed: 42, workers: 1,
	}
	grid := func(cfg gridConfig) []row {
		rows, err := buildGrid(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("rows = %d, want uniform + 2site", len(rows))
		}
		return rows
	}
	la := grid(base)
	if la[0].Topology != "" || la[0].Sites != 0 {
		t.Fatalf("uniform row carries topology columns: %+v", la[0])
	}
	if la[1].Topology != "2site" || la[1].Sites != 2 {
		t.Fatalf("2site row mislabeled: %+v", la[1])
	}
	bcfg := base
	bcfg.barrier = true
	ba := grid(bcfg)
	for i := range la {
		if la[i].Committed != ba[i].Committed {
			t.Fatalf("engines disagree on committed: %d vs %d", la[i].Committed, ba[i].Committed)
		}
	}
	if la[1].Rounds >= ba[1].Rounds {
		t.Fatalf("2site lookahead rounds %d did not beat barrier rounds %d",
			la[1].Rounds, ba[1].Rounds)
	}
	if ba[1].BlockedTimeUs != 0 {
		t.Fatalf("barrier cell reports blocked time %d", ba[1].BlockedTimeUs)
	}
	requireIdentical(t, "topology grid JSON", encode(t, la), encode(t, grid(base)))
	if _, err := buildGrid(gridConfig{
		protocols: []string{"cops"}, mixes: []string{"readheavy"},
		clients: []int{2}, txns: []int{10}, pipeline: 1,
		servers: []int{2}, replication: []int{1},
		topologies: []string{"moonbase"}, objects: 1, seed: 1, workers: 1,
	}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

// TestGridNemesisAcceptance is the bench-level acceptance pair of the
// fault layer: a certified 2000-txn cops cell with mid-run server
// crash+restart, and a 2-site cure cell with a cross-site partition+heal.
// Both must carry nonzero recovery-latency and unavailability columns and
// emit byte-identical JSON with Workers=1 and Workers=4 on both sharded
// engines. (cure's documented visibility fracture may surface under the
// partition's reshuffled delivery — then the cell must pin the first
// offending commit instead of certifying clean.)
func TestGridNemesisAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("long acceptance cells")
	}
	cells := []struct {
		name string
		cfg  gridConfig
	}{
		{"cops-crash", gridConfig{
			protocols: []string{"cops"}, mixes: []string{"balanced"},
			clients: []int{8}, txns: []int{2000}, pipeline: 1,
			servers: []int{4}, replication: []int{1},
			objects: 2, seed: 11, certify: true, nemesis: "crash",
		}},
		{"cure-2site-partition", gridConfig{
			protocols: []string{"cure"}, mixes: []string{"balanced"},
			clients: []int{8}, txns: []int{400}, pipeline: 1,
			servers: []int{4}, replication: []int{1},
			topologies: []string{"2site"},
			objects:    2, seed: 11, certify: true, nemesis: "partition",
		}},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			t.Parallel()
			for _, eng := range []struct {
				name    string
				barrier bool
			}{{"lookahead", false}, {"barrier", true}} {
				eng := eng
				t.Run(eng.name, func(t *testing.T) {
					t.Parallel()
					run := func(workers int) []row {
						cfg := cell.cfg
						cfg.workers = workers
						cfg.barrier = eng.barrier
						rows, err := buildGrid(cfg)
						if err != nil {
							t.Fatal(err)
						}
						if len(rows) != 1 {
							t.Fatalf("rows = %d, want 1", len(rows))
						}
						return rows
					}
					rows := run(1)
					r := rows[0]
					if r.Incomplete != 0 {
						t.Fatalf("%d transactions incomplete after heal", r.Incomplete)
					}
					if r.NemFaults == 0 || r.NemUnavailableUs <= 0 {
						t.Fatalf("fault columns empty: %+v", r.nemCols)
					}
					if r.NemRecoveries == 0 || r.NemRecoveryP50Us <= 0 {
						t.Fatalf("no recovery latency measured: %+v", r.nemCols)
					}
					if r.NemFaultedCommitted == 0 {
						t.Fatalf("no commits crossed the fault window: %+v", r.nemCols)
					}
					if r.NemLostMsgs != 0 {
						t.Fatalf("persistent faults lost %d messages", r.NemLostMsgs)
					}
					switch r.Cert {
					case "ok":
						// Certified clean across the fault.
					case "violation":
						if r.FirstViolationTxn == nil || *r.FirstViolationTxn < 0 {
							t.Fatalf("violating cell without a pinned first commit: %+v", r.certCols)
						}
						t.Logf("documented fracture pinned at commit %d (%s)",
							*r.FirstViolationTxn, r.CertReason)
					default:
						t.Fatalf("certification did not run: %+v", r.certCols)
					}
					// Worker-count byte-identity (wall-clocks are the one
					// nondeterministic column set).
					again := run(4)
					a, b := rows[0], again[0]
					a.CertWallMS, b.CertWallMS = 0, 0
					a.CertBatchWallMS, b.CertBatchWallMS = 0, 0
					requireIdentical(t, eng.name+" nemesis cell", encode(t, a), encode(t, b))
				})
			}
		})
	}
}

// TestGridReconfigDeterministic: same flags → byte-identical grids for a
// -nemesis replace cell, and the row is byte-identical across worker
// counts (the determinism contract extends to reconfiguration schedules).
// The replacement catch-up cost must surface in the nem_sync_* columns:
// versions adopted, sync time, and an unavailability window, with nothing
// lost.
func TestGridReconfigDeterministic(t *testing.T) {
	cfg := gridConfig{
		protocols: []string{"cops"}, mixes: []string{"balanced"},
		clients: []int{8}, txns: []int{400}, pipeline: 1,
		servers: []int{2}, replication: []int{1},
		objects: 2, seed: 5, workers: 1, certify: true, nemesis: "replace",
	}
	run := func(workers int) []row {
		c := cfg
		c.workers = workers
		rows, err := buildGrid(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("rows = %d, want 1", len(rows))
		}
		return rows
	}
	rows := run(1)
	r := rows[0]
	if r.Incomplete != 0 {
		t.Fatalf("%d transactions incomplete after the replacement caught up", r.Incomplete)
	}
	if r.NemReplacements == 0 {
		t.Fatalf("replace cell applied no replacement: %+v", r.nemCols)
	}
	if r.NemSyncVersions == 0 || r.NemSyncTimeUs <= 0 {
		t.Fatalf("replacement adopted no state: %+v", r.nemCols)
	}
	if r.NemUnavailableUs <= 0 {
		t.Fatalf("replacement cell reports no unavailability: %+v", r.nemCols)
	}
	if r.NemLostMsgs != 0 {
		t.Fatalf("non-lossy replacement lost %d messages", r.NemLostMsgs)
	}
	if r.Cert != "ok" {
		t.Fatalf("replace cell did not certify clean: %+v", r.certCols)
	}
	// Same flags → byte-identical (wall-clocks are the one
	// nondeterministic column set), and workers is not a schedule input.
	norm := func(rs []row) string {
		rs[0].CertWallMS, rs[0].CertBatchWallMS = 0, 0
		return encode(t, rs)
	}
	first := norm(rows)
	requireIdentical(t, "replace cell JSON (same flags)", first, norm(run(1)))
	requireIdentical(t, "replace cell JSON (W1 vs W4)", first, norm(run(4)))
}

// TestGridNemesisDeterministicAndGated: same flags → byte-identical
// nemesis grids (the bench determinism contract extends to faulted
// cells); fault-free grids omit every nem_* column; unknown schedule
// names and -nemesis under -curve are refused.
func TestGridNemesisDeterministicAndGated(t *testing.T) {
	cfg := gridConfig{
		protocols: []string{"cops"}, mixes: []string{"balanced"},
		clients: []int{8}, txns: []int{150}, pipeline: 1,
		servers: []int{2}, replication: []int{1},
		objects: 2, seed: 5, workers: 1, nemesis: "crash+partition",
	}
	run := func() string {
		rows, err := buildGrid(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rows[0].NemCrashes == 0 || rows[0].NemPartitions == 0 {
			t.Fatalf("crash+partition cell missing fault kinds: %+v", rows[0].nemCols)
		}
		return encode(t, rows)
	}
	requireIdentical(t, "nemesis grid JSON", run(), run())

	plain := cfg
	plain.nemesis = ""
	rows, err := buildGrid(plain)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].nemCols != (nemCols{}) {
		t.Fatalf("fault-free row carries nemesis columns: %+v", rows[0].nemCols)
	}
	bad := cfg
	bad.nemesis = "meteor"
	if _, err := buildGrid(bad); err == nil {
		t.Fatal("unknown nemesis schedule accepted")
	}
}

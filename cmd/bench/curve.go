package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/protocol"
)

// curveRow is one grid cell of the -curve output: an open-loop run of one
// protocol × mix × offered-rate point.
type curveRow struct {
	Protocol     string  `json:"protocol"`
	MixName      string  `json:"mix"`
	ReadFraction float64 `json:"read_fraction"`
	ZipfS        float64 `json:"zipf_s"`
	Servers      int     `json:"servers"`
	Replication  int     `json:"replication"`
	Topology     string  `json:"topology,omitempty"`
	Sites        int     `json:"sites,omitempty"`
	Clients      int     `json:"clients"`
	Txns         int     `json:"txns"`
	Arrivals     string  `json:"arrivals"`

	Saturated float64 `json:"saturated_txn_per_s"`
	Fraction  float64 `json:"fraction_of_saturated"`
	Offered   float64 `json:"offered_txn_per_s"`
	Achieved  float64 `json:"achieved_txn_per_s"`
	Knee      float64 `json:"knee_txn_per_s"`
	// Refined marks a knee-bisection point (-refineknee): it ran after
	// the swept fractions with the longer refinement window, and its
	// txns column reflects that window.
	Refined bool `json:"refined,omitempty"`

	Committed  int   `json:"committed"`
	Rejected   int   `json:"rejected"`
	Incomplete int   `json:"incomplete"`
	Events     int   `json:"events"`
	DurationUs int64 `json:"duration_us"`

	LatencyP50  int64   `json:"latency_p50_us"`
	LatencyP90  int64   `json:"latency_p90_us"`
	LatencyP99  int64   `json:"latency_p99_us"`
	LatencyMean float64 `json:"latency_mean_us"`
	QueueP50    int64   `json:"queue_delay_p50_us"`
	QueueP99    int64   `json:"queue_delay_p99_us"`
	QueueMean   float64 `json:"queue_delay_mean_us"`
	ServiceP50  int64   `json:"service_p50_us"`
	ServiceP99  int64   `json:"service_p99_us"`
	InFlightMax int64   `json:"in_flight_max"`

	// Sharded-stepping shape columns, shared with the closed-loop grid
	// rows (present with -workers ≥ 1).
	shardCols

	// Certification columns, shared with the closed-loop grid rows
	// (present with -certify only).
	certCols
}

// curveConfig parameterizes a curve grid build.
type curveConfig struct {
	protocols   []string
	mixes       []string
	fractions   []float64
	clients     []int
	txns        []int
	servers     []int
	replication []int
	topologies  []string
	objects     int
	seed        int64
	uniform     bool // deterministic-rate arrivals instead of Poisson
	certify     bool // ride-along certification of every point
	refineKnee  bool // bisect the knee after each fraction sweep
	workers     int
	barrier     bool
	rebalance   bool
}

// buildCurve measures one latency–throughput curve per protocol × mix ×
// servers × replication and flattens the points into grid rows. Fully
// deterministic for a fixed config (worker count excluded: it only
// parallelizes the stepping).
func buildCurve(cfg curveConfig) ([]curveRow, error) {
	if len(cfg.topologies) == 0 {
		cfg.topologies = []string{"uniform"} // the pre-topology default
	}
	arrivals := "poisson"
	if cfg.uniform {
		arrivals = "uniform"
	}
	rows := []curveRow{}
	for _, name := range cfg.protocols {
		p := core.ByName(strings.TrimSpace(name))
		if p == nil {
			return nil, fmt.Errorf("unknown protocol %q (have %v)", name, core.Names())
		}
		for _, mixName := range cfg.mixes {
			mix, err := mixByName(strings.TrimSpace(mixName))
			if err != nil {
				return nil, err
			}
			for _, topoName := range cfg.topologies {
				topo, err := protocol.TopologyByName(strings.TrimSpace(topoName))
				if err != nil {
					return nil, err
				}
				topoCol, sitesCol := "", 0
				if topo != nil {
					topoCol, sitesCol = topo.Name, topo.Sites
				}
				for _, srv := range cfg.servers {
					for _, repl := range cfg.replication {
						if repl > srv {
							continue // replication factor cannot exceed servers
						}
						for _, txns := range cfg.txns {
							for _, cl := range cfg.clients {
								curve, err := core.MeasureLoadCurve(p, mix, cfg.seed, core.CurveOptions{
									Servers: srv, ObjectsPerServer: cfg.objects,
									Replication: repl,
									Clients:     cl, Txns: txns,
									Fractions: cfg.fractions, Deterministic: cfg.uniform,
									Topology:   topo,
									Certify:    cfg.certify,
									RefineKnee: cfg.refineKnee,
									Workers:    cfg.workers, Barrier: cfg.barrier, Rebalance: cfg.rebalance,
								})
								if err != nil {
									return nil, err
								}
								for _, pt := range curve.Points {
									// Refinement points ran the longer bisection
									// window; their txns column says which.
									ptTxns := txns
									if pt.Refined {
										ptTxns = 2 * txns
									}
									rows = append(rows, curveRow{
										Protocol:     curve.Protocol,
										MixName:      strings.TrimSpace(mixName),
										ReadFraction: mix.ReadFraction,
										ZipfS:        mix.ZipfS,
										Servers:      srv,
										Replication:  repl,
										Topology:     topoCol,
										Sites:        sitesCol,
										Clients:      cl,
										Txns:         ptTxns,
										Arrivals:     arrivals,
										Saturated:    curve.Saturated,
										Fraction:     pt.Fraction,
										Offered:      pt.Offered,
										Achieved:     pt.Achieved,
										Knee:         curve.Knee,
										Refined:      pt.Refined,
										Committed:    pt.Committed,
										Rejected:     pt.Rejected,
										Incomplete:   pt.Incomplete,
										Events:       pt.Events,
										DurationUs:   int64(pt.Duration),
										LatencyP50:   pt.Latency.P50,
										LatencyP90:   pt.Latency.P90,
										LatencyP99:   pt.Latency.P99,
										LatencyMean:  pt.Latency.Mean,
										QueueP50:     pt.QueueDelay.P50,
										QueueP99:     pt.QueueDelay.P99,
										QueueMean:    pt.QueueDelay.Mean,
										ServiceP50:   pt.Service.P50,
										ServiceP99:   pt.Service.P99,
										InFlightMax:  pt.InFlight.Max,
									})
									shardCells(&rows[len(rows)-1].shardCols, pt.Sharding)
									if cfg.certify {
										certCells(&rows[len(rows)-1].certCols, pt.Cert)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return rows, nil
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad fraction %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}
